/**
 * @file
 * Unit tests for the observability layer: the Chrome trace_event sink,
 * the periodic stat sampler, and the System-level stats JSON export
 * (docs/OBSERVABILITY.md).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hh"
#include "sim/simulation.hh"
#include "sim/stat_sampler.hh"
#include "sim/trace.hh"
#include "system/system.hh"

namespace nomad
{
namespace
{

TEST(TraceSink, EmitsWellFormedJson)
{
    std::ostringstream oss;
    {
        trace::TraceSink sink(oss);
        sink.processName(1, "run-a");
        sink.complete(1, "trackX", "burst", trace::Cat::Copy, 100, 8,
                      {{"addr", 4096}});
        sink.instant(1, "trackX", "mark", trace::Cat::Sched, 120);
        sink.counter(1, "occ", 130, {{"active", 3}, {"queued", 1}});
        const std::uint64_t id = sink.nextAsyncId();
        sink.asyncBegin(1, "fill", trace::Cat::Copy, id, 140,
                        {{"cfn", 7}});
        sink.asyncInstant(1, "critical_block", trace::Cat::Copy, id,
                          150);
        sink.asyncEnd(1, "fill", trace::Cat::Copy, id, 160,
                      {{"latency", 20}});
        sink.close();
    }
    const std::string text = oss.str();
    std::string err;
    EXPECT_TRUE(json::validate(text, &err)) << err << "\n" << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"process_name\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"b\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"e\""), std::string::npos);
}

TEST(TraceSink, CategoryFiltering)
{
    std::ostringstream oss;
    trace::TraceSink sink(oss);
    // Dram starts disabled (high volume); events must be dropped.
    EXPECT_FALSE(sink.enabled(trace::Cat::Dram));
    EXPECT_TRUE(sink.enabled(trace::Cat::Copy));
    sink.complete(0, "ch0", "RD", trace::Cat::Dram, 0, 4);
    EXPECT_EQ(sink.eventCount(), 0u);
    sink.setEnabled(trace::Cat::Dram, true);
    sink.complete(0, "ch0", "RD", trace::Cat::Dram, 0, 4);
    // The burst plus the lazily-emitted thread_name metadata.
    EXPECT_EQ(sink.eventCount(), 2u);
    sink.setEnabled(trace::Cat::Copy, false);
    sink.asyncBegin(0, "fill", trace::Cat::Copy, 1, 0);
    EXPECT_EQ(sink.eventCount(), 2u);
    sink.close();
    std::string err;
    EXPECT_TRUE(json::validate(oss.str(), &err)) << err;
}

TEST(TraceSink, EventsAfterCloseAreDropped)
{
    std::ostringstream oss;
    trace::TraceSink sink(oss);
    sink.instant(0, "t", "a", trace::Cat::Sched, 1);
    sink.close();
    const std::string closed = oss.str();
    sink.instant(0, "t", "b", trace::Cat::Sched, 2);
    sink.close();
    EXPECT_EQ(oss.str(), closed);
    EXPECT_TRUE(json::validate(closed, nullptr));
}

TEST(StatSampler, RecordsSeriesAtPeriod)
{
    Simulation sim;
    StatSampler sampler(sim, "sampler", 10);
    stats::Scalar s("s", "");
    sampler.addStat(&s);
    double gauge = 0;
    sampler.addProbe("gauge", [&gauge]() { return gauge; });
    sampler.start();
    sim.schedule(15, [&]() {
        s += 5;
        gauge = 2;
    });
    sim.run(35);

    // Samples at ticks 0, 10, 20, 30.
    ASSERT_EQ(sampler.numSamples(), 4u);
    EXPECT_EQ(sampler.sampleTicks(),
              (std::vector<Tick>{0, 10, 20, 30}));
    ASSERT_EQ(sampler.numProbes(), 2u);
    EXPECT_EQ(sampler.series(0),
              (std::vector<double>{0, 0, 5, 5}));
    EXPECT_EQ(sampler.series(1),
              (std::vector<double>{0, 0, 2, 2}));

    std::ostringstream oss;
    sampler.dumpJson(oss);
    std::string err;
    EXPECT_TRUE(json::validate(oss.str(), &err)) << err << oss.str();
    EXPECT_NE(oss.str().find("\"gauge\""), std::string::npos);

    sampler.clear();
    EXPECT_EQ(sampler.numSamples(), 0u);
    sim.run(10);
    EXPECT_EQ(sampler.numSamples(), 1u);
}

TEST(StatSampler, MirrorsToTraceCounters)
{
    std::ostringstream oss;
    trace::TraceSink sink(oss);
    Simulation sim;
    sim.setTrace(&sink, 3);
    StatSampler sampler(sim, "sampler", 10);
    sampler.addProbe("occ", []() { return 1.0; });
    sampler.start();
    sim.run(25);
    sink.close();
    const std::string text = oss.str();
    EXPECT_TRUE(json::validate(text, nullptr)) << text;
    EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(text.find("\"occ\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\": 3"), std::string::npos);
}

/** A tiny but complete System run with tracing + sampling attached. */
TEST(SystemObservability, StatsJsonAndTraceRoundTrip)
{
    std::ostringstream trace_out;
    trace::TraceSink sink(trace_out);

    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.scheme = SchemeKind::Nomad;
    cfg.workload = "cact";
    cfg.instructionsPerCore = 4000;
    cfg.warmupInstructionsPerCore = 4000;
    cfg.obs.traceSink = &sink;
    cfg.obs.tracePid = 7;
    cfg.obs.runLabel = "NOMAD/cact";
    cfg.obs.samplePeriod = 1000;

    System system(cfg);
    ASSERT_NE(system.sampler(), nullptr);
    system.run();

    std::ostringstream stats_out;
    system.writeStatsJson(stats_out);
    const std::string stats = stats_out.str();
    std::string err;
    EXPECT_TRUE(json::validate(stats, &err)) << err;
    EXPECT_NE(stats.find("\"meta\""), std::string::npos);
    EXPECT_NE(stats.find("\"run_label\": \"NOMAD/cact\""),
              std::string::npos);
    EXPECT_NE(stats.find("\"results\""), std::string::npos);
    EXPECT_NE(stats.find("\"timeseries\""), std::string::npos);
    EXPECT_NE(stats.find("\"nomad.pcshr.active\""), std::string::npos);
    // The measured window restarts the series: samples span the
    // measured ticks only, so the series stays small and aligned.
    EXPECT_GT(system.sampler()->numSamples(), 0u);

    sink.close();
    const std::string trace = trace_out.str();
    EXPECT_TRUE(json::validate(trace, &err)) << err;
    EXPECT_NE(trace.find("\"fill\""), std::string::npos);
    EXPECT_NE(trace.find("\"pcshr_alloc\""), std::string::npos);
    EXPECT_NE(trace.find("\"pid\": 7"), std::string::npos);
}

TEST(SystemObservability, DisabledByDefault)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.instructionsPerCore = 1000;
    cfg.warmupInstructionsPerCore = 1000;
    System system(cfg);
    EXPECT_EQ(system.sampler(), nullptr);
    system.run();
    // Stats JSON still works without a sampler: timeseries is null.
    std::ostringstream oss;
    system.writeStatsJson(oss);
    std::string err;
    EXPECT_TRUE(json::validate(oss.str(), &err)) << err;
    EXPECT_NE(oss.str().find("\"timeseries\": null"),
              std::string::npos);
}

} // namespace
} // namespace nomad
