/**
 * @file
 * Tests for the chaos-fuzzing harness (docs/CHAOS.md): deterministic
 * random fault-schedule generation, the shrink-candidate enumeration
 * and its termination measure, delta-debugging minimization against a
 * synthetic oracle, and an end-to-end campaign — fuzz a tiny suite,
 * catch an injected wedge as a watchdog stall, shrink it, write the
 * repro bundle, and replay it byte-for-byte.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harden/chaos_spec.hh"
#include "harden/diag.hh"
#include "runner/chaos.hh"

namespace nomad
{
namespace
{

using harden::FaultSpec;

// Random spec generation ----------------------------------------------

TEST(ChaosSpec, RandomSpecIsDeterministicInItsSeed)
{
    for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
        const FaultSpec a = harden::randomFaultSpec(seed);
        const FaultSpec b = harden::randomFaultSpec(seed);
        EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
        EXPECT_TRUE(a.any()) << "seed " << seed
                             << ": generated spec injects nothing";
    }
    EXPECT_NE(harden::randomFaultSpec(1).describe(),
              harden::randomFaultSpec(2).describe());
}

TEST(ChaosSpec, RandomSpecRoundTripsThroughTheGrammar)
{
    // Every generated spec must be canonical: parsing its own
    // describe() text reproduces it exactly, so bundles and --fault-
    // spec command lines are lossless.
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        const FaultSpec spec = harden::randomFaultSpec(seed);
        const FaultSpec reparsed = FaultSpec::parse(spec.describe());
        EXPECT_EQ(spec.describe(), reparsed.describe())
            << "seed " << seed;
    }
}

// Shrinking -----------------------------------------------------------

/** Well-founded measure: clause count dominates, magnitudes break
 *  ties. Every shrink candidate must strictly decrease it. */
double
shrinkMeasure(const FaultSpec &s)
{
    const int clauses = (s.dropDram > 0) + (s.delayDram > 0) +
                        (s.stuckCopy > 0) + (s.burstPeriod > 0) +
                        s.noRetry;
    const double magnitude =
        s.dropDram + s.delayDram + s.stuckCopy +
        static_cast<double>(s.delayDramTicks) +
        static_cast<double>(s.burstLength) +
        static_cast<double>(s.burstPeriod);
    return clauses * 1e12 + magnitude;
}

TEST(ChaosSpec, ShrinkCandidatesAreStrictlySimpler)
{
    const FaultSpec full = FaultSpec::parse(
        "seed=9:drop-dram=0.5:delay-dram=0.25@2000:stuck-copy=0.125:"
        "pcshr-burst=100@1000:no-retry");
    const std::vector<FaultSpec> candidates =
        harden::shrinkCandidates(full);
    EXPECT_GE(candidates.size(), 5u); // At least one removal each.
    for (const FaultSpec &c : candidates) {
        EXPECT_LT(shrinkMeasure(c), shrinkMeasure(full))
            << c.describe();
        // Candidates stay parseable (they get re-spelled into
        // --fault-spec text and bundles).
        EXPECT_EQ(FaultSpec::parse(c.describe()).describe(),
                  c.describe());
    }
}

TEST(ChaosSpec, ShrinkingBottomsOut)
{
    // Follow first-candidate chains from a big spec: the measure is
    // well-founded, so the chain must reach a spec with no candidates.
    FaultSpec spec = FaultSpec::parse(
        "seed=1:drop-dram=1:delay-dram=1@100000:stuck-copy=1:"
        "pcshr-burst=1000@100000:no-retry");
    int steps = 0;
    for (; steps < 200; ++steps) {
        const std::vector<FaultSpec> c = harden::shrinkCandidates(spec);
        if (c.empty())
            break;
        spec = c.front();
    }
    EXPECT_LT(steps, 200) << "shrink chain did not terminate";
}

TEST(ChaosSpec, MinimizeIsolatesTheCulpritClause)
{
    // Synthetic bug: the failure needs drop-dram >= 0.2 and nothing
    // else. Minimization must strip every other clause and halve the
    // probability down to the last failing value.
    const FaultSpec start = FaultSpec::parse(
        "seed=5:drop-dram=0.8:delay-dram=0.5@1000:stuck-copy=0.3:"
        "pcshr-burst=100@1000:no-retry");
    unsigned calls = 0;
    const auto oracle = [&calls](const FaultSpec &s) {
        ++calls;
        return s.dropDram >= 0.2;
    };
    const harden::ShrinkResult result =
        harden::minimizeFaultSpec(start, oracle, 500);
    EXPECT_TRUE(result.minimal);
    EXPECT_EQ(result.trialsUsed, calls);
    const FaultSpec &m = result.spec;
    EXPECT_DOUBLE_EQ(m.dropDram, 0.2); // 0.8 -> 0.4 -> 0.2, 0.1 passes.
    EXPECT_DOUBLE_EQ(m.delayDram, 0);
    EXPECT_DOUBLE_EQ(m.stuckCopy, 0);
    EXPECT_EQ(m.burstPeriod, 0u);
    EXPECT_FALSE(m.noRetry);
}

TEST(ChaosSpec, MinimizeRespectsTheTrialBudget)
{
    const FaultSpec start = FaultSpec::parse(
        "seed=5:drop-dram=1:delay-dram=1@100000:stuck-copy=1");
    const auto oracle = [](const FaultSpec &s) {
        return s.dropDram > 0;
    };
    const harden::ShrinkResult result =
        harden::minimizeFaultSpec(start, oracle, 3);
    EXPECT_LE(result.trialsUsed, 3u);
    EXPECT_FALSE(result.minimal);
    // Whatever it settled on must still fail.
    EXPECT_GT(result.spec.dropDram, 0);
}

// End-to-end campaign -------------------------------------------------

runner::ChaosOptions
tinyChaos()
{
    runner::ChaosOptions opts;
    opts.suite = "fig7";
    opts.scale.instrPerCore = 2000;
    opts.scale.cores = 2;
    opts.watchdogTicks = 200'000;
    opts.progress = false;
    return opts;
}

TEST(Chaos, TrialClassifiesAnInjectedWedgeAsStall)
{
    // Heavy response loss with retry disabled wedges the back-end;
    // the watchdog must convert that into a deterministic stall.
    const FaultSpec wedge =
        FaultSpec::parse("seed=959198:drop-dram=0.667:no-retry");
    const runner::ChaosTrialOutcome out =
        runner::runChaosTrial(tinyChaos(), 3, wedge);
    EXPECT_TRUE(out.failed);
    EXPECT_EQ(out.kind, harden::ErrorKind::Stall);
    EXPECT_NE(out.diagJson.find("\"stall\""), std::string::npos);

    // The same trial re-run is bit-identical — the replay contract.
    const runner::ChaosTrialOutcome again =
        runner::runChaosTrial(tinyChaos(), 3, wedge);
    EXPECT_EQ(out.diagJson, again.diagJson);
}

TEST(Chaos, CampaignShrinksAndBundlesAndReplays)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        "nomad-chaos-bundles";
    std::filesystem::remove_all(dir);

    runner::ChaosOptions opts = tinyChaos();
    opts.trials = 4; // Base seed 12345: trial 3 wedges NOMAD/resident.
    opts.bundleDir = dir.string();
    const runner::ChaosReport report = runner::runChaosCampaign(opts);
    EXPECT_EQ(report.trialsRun, 4u);
    ASSERT_GE(report.failures.size(), 1u);

    const runner::ChaosFailure &f = report.failures.front();
    EXPECT_EQ(f.kind, harden::ErrorKind::Stall);
    EXPECT_TRUE(f.minimal);
    // The minimized schedule is a (weak) subset of the original.
    EXPECT_LE(f.minimized.dropDram, f.spec.dropDram);
    EXPECT_LE(f.minimized.stuckCopy, f.spec.stuckCopy);
    ASSERT_FALSE(f.bundlePath.empty());
    for (const char *file : {"spec.txt", "original-spec.txt",
                             "job.txt", "error.txt",
                             "diagnostic.json", "replay.sh"})
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(f.bundlePath) / file))
            << file;

    // Replay from the bundle alone: reproduces, and the observed
    // diagnostic is byte-identical to the one the bundle shipped.
    const std::string diag_out =
        (dir / "replay-diag.json").string();
    EXPECT_TRUE(runner::replayBundle(f.bundlePath, diag_out, false));
    std::ifstream a(f.bundlePath + "/diagnostic.json"),
        b(diag_out);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_FALSE(sa.str().empty());
    EXPECT_EQ(sa.str(), sb.str());
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace nomad
