/**
 * @file
 * Unit tests for the event-driven wake-queue kernel: same-tick firing
 * order, reschedule-while-pending coalescing, cancellation, timing
 * wheel wrap across far strides, registration growth churn, and a
 * randomized legacy-vs-event equivalence check that diffs the stats
 * JSON of twin runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace nomad
{
namespace
{

/** Fires every cycle; records its id in a shared firing log. */
class OrderProbe
{
  public:
    OrderProbe(std::vector<int> *log, int id) : log_(log), id_(id) {}
    void tick() { log_->push_back(id_); }
    bool idle() const { return false; }
    Tick nextWorkTick() const { return 0; }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(WakeQueue, SameTickOrderIsRegistrationOrder)
{
    // 70 probes span more than one 64-bit due-bit word, so the walk
    // has to keep registration order across word boundaries too.
    constexpr int kProbes = 70;
    Simulation sim;
    std::vector<int> log;
    std::vector<std::unique_ptr<OrderProbe>> probes;
    for (int i = 0; i < kProbes; ++i) {
        probes.push_back(std::make_unique<OrderProbe>(&log, i));
        sim.addClocked(probes.back().get(), 1);
    }
    sim.run(3);
    ASSERT_EQ(log.size(), 3u * kProbes);
    for (int t = 0; t < 3; ++t)
        for (int i = 0; i < kProbes; ++i)
            ASSERT_EQ(log[t * kProbes + i], i)
                << "tick " << t << " position " << i;
}

/**
 * One-shot component whose next-work tick is mutated externally;
 * every mutation pokes first, per the addClocked() contract.
 */
class Retargetable
{
  public:
    explicit Retargetable(Simulation &sim) : sim_(sim) {}

    void
    attach()
    {
        handle_ = sim_.addClocked(this, 1);
    }

    void
    tick()
    {
        if (sim_.now() < work_)
            return; // Elided/poked edge before the target: no-op.
        fires.push_back(sim_.now());
        work_ = MaxTick;
    }

    bool idle() const { return work_ == MaxTick; }
    Tick nextWorkTick() const { return work_; }

    void
    retarget(Tick t)
    {
        sim_.pokeClocked(handle_);
        work_ = t;
    }

    std::vector<Tick> fires;

  private:
    Simulation &sim_;
    Simulation::ClockedHandle handle_ =
        Simulation::InvalidClockedHandle;
    Tick work_ = 100;
};

TEST(WakeQueue, RescheduleWhilePendingMovesEarlier)
{
    Simulation sim;
    Retargetable c(sim);
    c.attach();
    sim.schedule(50, [&]() { c.retarget(60); });
    sim.run(300);
    EXPECT_EQ(c.fires, (std::vector<Tick>{60}));
}

TEST(WakeQueue, RescheduleWhilePendingMovesLater)
{
    // The wake token for tick 100 is already queued when the target
    // moves to 160: the stale token must coalesce away, not fire.
    Simulation sim;
    Retargetable c(sim);
    c.attach();
    sim.schedule(50, [&]() { c.retarget(160); });
    sim.run(300);
    EXPECT_EQ(c.fires, (std::vector<Tick>{160}));
}

TEST(WakeQueue, CancelAndRearm)
{
    Simulation sim;
    Retargetable c(sim);
    c.attach();
    sim.schedule(50, [&]() { c.retarget(MaxTick); });
    sim.schedule(200, [&]() { c.retarget(250); });
    sim.run(400);
    EXPECT_EQ(c.fires, (std::vector<Tick>{250}));
}

/** Sleeps a cycling stride after each firing; records firing ticks. */
class Strider
{
  public:
    explicit Strider(Simulation &sim) : sim_(sim) {}

    void
    tick()
    {
        if (sim_.now() < next_)
            return; // Elided/poked edge before the stride target.
        fires.push_back(sim_.now());
        // Strides straddle the 64-slot timing wheel: short ones stay
        // in the wheel, 200 overflows to the heap calendar, and the
        // 63/64/65 cluster lands on wrap boundaries.
        static constexpr Tick strides[] = {1,   63, 64,  65, 127,
                                           128, 2,  200, 64, 5};
        next_ = sim_.now() + strides[fires.size() % 10];
    }

    // Never idle: there is always a future stride scheduled, and
    // idle() must be a pure function of component state (the idle
    // fast-forward in both kernels jumps straight to the next event,
    // past any pending wake).
    bool idle() const { return false; }
    Tick nextWorkTick() const { return next_; }

    std::vector<Tick> fires;

  private:
    Simulation &sim_;
    Tick next_ = 0;
};

TEST(WakeQueue, WheelWrapAndFarStrides)
{
    auto runOnce = [](Simulation::KernelMode mode) {
        Simulation sim;
        sim.setKernelMode(mode);
        Strider s(sim);
        sim.addClocked(&s, 1);
        sim.run(5000);
        return s.fires;
    };
    const std::vector<Tick> event =
        runOnce(Simulation::KernelMode::EventDriven);
    const std::vector<Tick> legacy =
        runOnce(Simulation::KernelMode::LegacyPolling);
    EXPECT_EQ(event, legacy);

    // Cross-check the head of the sequence against the stride table.
    static constexpr Tick strides[] = {1,   63, 64,  65, 127,
                                       128, 2,  200, 64, 5};
    ASSERT_GE(event.size(), 25u);
    Tick expect = 0;
    for (std::size_t i = 0; i < 25; ++i) {
        ASSERT_EQ(event[i], expect) << "firing " << i;
        expect += strides[(i + 1) % 10];
    }
}

/**
 * Busy-burst/sleep pattern driven by a private deterministic RNG.
 * The RNG is consumed only inside real work edges, which both
 * kernels deliver at identical ticks, so twin runs stay in lockstep.
 * Work and elided-edge counts are published as statistics so twin
 * runs can be diffed as stats JSON.
 */
class PatternClocked
{
  public:
    PatternClocked(Simulation &sim, std::uint64_t seed, Tick period,
                   int index)
        : sim_(sim), rng_(seed), period_(period),
          work_("comp." + std::to_string(index) + ".work", ""),
          skipped_("comp." + std::to_string(index) + ".skipped", "")
    {
        sim_.statistics().add(&work_);
        sim_.statistics().add(&skipped_);
    }

    void
    attach()
    {
        handle_ = sim_.addClocked(this, period_);
    }

    void
    tick()
    {
        const Tick t = sim_.now();
        if (busyLeft_ == 0) {
            if (t < sleepUntil_) {
                // Spurious edge: identical accounting to skipTicks(1),
                // per the nextWorkTick() contract.
                skipped_ += 1;
                return;
            }
            busyLeft_ = 1 + rng_.nextRange(6);
        }
        work_ += 1;
        fireHash = fireHash * 1099511628211ull + t;
        if (--busyLeft_ == 0)
            sleepUntil_ = t + period_ * (1 + rng_.nextRange(64));
    }

    bool
    idle() const
    {
        // There is always a future burst scheduled, so the component
        // is never idle in the kernel's sense (idle would let both
        // kernels fast-forward past sleepUntil_ to the next event).
        return false;
    }

    Tick
    nextWorkTick() const
    {
        return busyLeft_ > 0 ? Tick{0} : sleepUntil_;
    }

    void skipTicks(Tick n) { skipped_ += static_cast<double>(n); }

    /** External stimulus: extend the burst (poke-before-mutate). */
    void
    wake(int amount)
    {
        sim_.pokeClocked(handle_);
        busyLeft_ += amount;
    }

    double workCount() const { return work_.value(); }
    double skipCount() const { return skipped_.value(); }

    std::uint64_t fireHash = 1469598103934665603ull;

  private:
    Simulation &sim_;
    Rng rng_;
    Tick period_;
    Simulation::ClockedHandle handle_ =
        Simulation::InvalidClockedHandle;
    int busyLeft_ = 0;
    Tick sleepUntil_ = 0;
    stats::Scalar work_;
    stats::Scalar skipped_;
};

struct TwinResult
{
    std::vector<double> work, skipped;
    std::vector<std::uint64_t> hashes;
    std::string statsJson;
};

TwinResult
runPatternFleet(Simulation::KernelMode mode, std::uint64_t seed,
                int components, Tick horizon)
{
    Simulation sim;
    sim.setKernelMode(mode);
    Rng topo(seed);
    std::vector<std::unique_ptr<PatternClocked>> comps;
    for (int i = 0; i < components; ++i) {
        const Tick period = 1 + topo.nextRange(3);
        comps.push_back(std::make_unique<PatternClocked>(
            sim, seed * 1000 + i, period, i));
        comps.back()->attach();
    }
    // Random external wakes, including pokes to sleeping components.
    for (int i = 0; i < 50; ++i) {
        const Tick at = 1 + topo.nextRange(horizon - 2);
        const int c = static_cast<int>(
            topo.nextRange(static_cast<std::uint64_t>(components)));
        sim.schedule(at,
                     [&comps, c]() { comps[c]->wake(1 + (c % 5)); });
    }
    sim.run(horizon);

    TwinResult r;
    for (const auto &c : comps) {
        r.work.push_back(c->workCount());
        r.skipped.push_back(c->skipCount());
        r.hashes.push_back(c->fireHash);
    }
    std::ostringstream oss;
    sim.statistics().dumpJson(oss);
    r.statsJson = oss.str();
    return r;
}

TEST(WakeQueue, RandomizedLegacyEventEquivalence)
{
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
        const TwinResult ev = runPatternFleet(
            Simulation::KernelMode::EventDriven, seed, 24, 6000);
        const TwinResult lg = runPatternFleet(
            Simulation::KernelMode::LegacyPolling, seed, 24, 6000);
        EXPECT_EQ(ev.work, lg.work) << "seed " << seed;
        EXPECT_EQ(ev.skipped, lg.skipped) << "seed " << seed;
        EXPECT_EQ(ev.hashes, lg.hashes) << "seed " << seed;
        EXPECT_EQ(ev.statsJson, lg.statsJson) << "seed " << seed;
        // Sanity: the fleet actually did something.
        double total = 0;
        for (const double w : ev.work)
            total += w;
        EXPECT_GT(total, 1000) << "seed " << seed;
    }
}

TEST(WakeQueue, GrowthChurnEquivalence)
{
    // 150 components need the due/dirty bitsets and every wheel slot
    // to grow to three words; the twin comparison catches any bit
    // lost during growth.
    const TwinResult ev = runPatternFleet(
        Simulation::KernelMode::EventDriven, 7, 150, 2500);
    const TwinResult lg = runPatternFleet(
        Simulation::KernelMode::LegacyPolling, 7, 150, 2500);
    EXPECT_EQ(ev.work, lg.work);
    EXPECT_EQ(ev.skipped, lg.skipped);
    EXPECT_EQ(ev.hashes, lg.hashes);
    EXPECT_EQ(ev.statsJson, lg.statsJson);
}

} // namespace
} // namespace nomad
