/**
 * @file
 * Tests for the core model: issue/retire width, window-limited MLP,
 * TLB-walk coalescing, stall attribution (handler vs walk vs memory),
 * posted stores, and the instruction-limit plumbing.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"
#include "dramcache/baseline_scheme.hh"

namespace nomad
{
namespace
{

/** Generator producing a fixed scripted stream (loops at the end). */
class ScriptedGen : public Generator
{
  public:
    InstrRecord
    next() override
    {
        if (script.empty())
            return InstrRecord{};
        const InstrRecord r = script[cursor];
        cursor = (cursor + 1) % script.size();
        return r;
    }

    std::vector<InstrRecord> script;
    std::size_t cursor = 0;
};

/** Memory that answers after a fixed delay. */
class FixedLatencyMem : public MemPort, public Clocked
{
  public:
    explicit FixedLatencyMem(Simulation &sim, Tick latency)
        : sim_(sim), latency_(latency)
    {
        sim.addClocked(this, 1);
    }

    bool
    tryAccess(const MemRequestPtr &req) override
    {
        ++accesses;
        if (req->isWrite) {
            req->complete(sim_.now());
            return true;
        }
        auto r = req;
        const Tick done = sim_.now() + latency_;
        sim_.events().schedule(done, [r, done]() { r->complete(done); });
        return true;
    }

    void tick() override {}
    bool idle() const override { return true; }

    int accesses = 0;

  private:
    Simulation &sim_;
    Tick latency_;
};

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : pt(1 << 16), ddr(sim, "ddr", DramTiming::ddr4_3200()),
          scheme(sim, "base", ddr, pt), mem(sim, 20),
          tlb(sim, "tlb", TlbParams{16, 64, 4, 4})
    {
    }

    Core &
    makeCore(std::uint64_t limit, std::uint32_t width = 4)
    {
        CoreParams p;
        p.issueWidth = width;
        p.retireWidth = width;
        p.windowSize = 64;
        p.walkLatency = 50;
        p.instructionLimit = limit;
        p.branchRatio = 0.0; // Branch tests opt in explicitly.
        core = std::make_unique<Core>(sim, "cpu", 0, p, gen, tlb, mem,
                                      scheme, pt);
        return *core;
    }

    Simulation sim;
    PageTable pt;
    DramDevice ddr;
    BaselineScheme scheme;
    FixedLatencyMem mem;
    Tlb tlb;
    ScriptedGen gen;
    std::unique_ptr<Core> core;
};

TEST_F(CoreTest, PureAluStreamRetiresAtIssueWidth)
{
    gen.script = {InstrRecord{}}; // All non-memory.
    Core &c = makeCore(4000, 4);
    while (!c.done())
        sim.run(100);
    EXPECT_NEAR(c.ipc(), 4.0, 0.05);
    EXPECT_EQ(c.retiredTotal(), 4000u);
    EXPECT_EQ(c.stallHandler.value() + c.stallMem.value(), 0.0);
}

TEST_F(CoreTest, LoadsOverlapUpToWindow)
{
    // One load per instruction to distinct pages already warm in the
    // TLB: with latency 20 and window 64, loads pipeline and IPC stays
    // far above 1/20.
    gen.script.clear();
    for (int i = 0; i < 8; ++i) {
        InstrRecord r;
        r.isMem = true;
        r.vaddr = static_cast<Addr>(i) * BlockBytes * 8;
        gen.script.push_back(r);
    }
    Core &c = makeCore(4000, 4);
    while (!c.done())
        sim.run(100);
    EXPECT_GT(c.ipc(), 1.0) << "independent loads must overlap";
    EXPECT_GT(mem.accesses, 3000);
}

TEST_F(CoreTest, TlbMissesToSamePageCoalesceIntoOneWalk)
{
    // A burst of accesses to the same cold page: one walk, not N.
    gen.script.clear();
    for (int i = 0; i < 16; ++i) {
        InstrRecord r;
        r.isMem = true;
        r.vaddr = 0x5000 + i * 64;
        gen.script.push_back(r);
    }
    InstrRecord alu;
    for (int i = 0; i < 64; ++i)
        gen.script.push_back(alu);
    Core &c = makeCore(80);
    while (!c.done())
        sim.run(100);
    EXPECT_EQ(c.walks.value(), 1.0)
        << "16 concurrent misses to one page coalesce into one walk";
}

TEST_F(CoreTest, StallAttributionSeparatesWalkFromMemory)
{
    // Strided cold pages: every access is a TLB miss + memory access.
    gen.script.clear();
    for (int i = 0; i < 64; ++i) {
        InstrRecord r;
        r.isMem = true;
        r.vaddr = static_cast<Addr>(i + 1) * PageBytes;
        gen.script.push_back(r);
    }
    Core &c = makeCore(64, 1);
    while (!c.done())
        sim.run(100);
    EXPECT_GT(c.stallWalk.value(), 0.0);
    EXPECT_GT(c.stallMem.value(), 0.0);
    EXPECT_EQ(c.stallHandler.value(), 0.0)
        << "the baseline scheme runs no OS handler";
}

TEST_F(CoreTest, PostedStoresDoNotStallRetirement)
{
    gen.script.clear();
    InstrRecord st;
    st.isMem = true;
    st.isWrite = true;
    st.vaddr = 0x9000;
    gen.script.push_back(st);
    Core &c = makeCore(2000, 4);
    while (!c.done())
        sim.run(100);
    EXPECT_GT(c.ipc(), 2.0) << "stores retire without waiting on data";
    // Dispatched stores include a few beyond the retirement limit.
    EXPECT_GE(c.stores.value(), 2000.0);
}

TEST_F(CoreTest, InstructionLimitRaisesAndResumes)
{
    gen.script = {InstrRecord{}};
    Core &c = makeCore(100);
    while (!c.done())
        sim.run(50);
    EXPECT_EQ(c.retiredTotal(), 100u);
    c.setInstructionLimit(250);
    EXPECT_FALSE(c.done());
    while (!c.done())
        sim.run(50);
    EXPECT_EQ(c.retiredTotal(), 250u);
}

TEST_F(CoreTest, BranchMispredictsThrottleTheFrontEnd)
{
    gen.script = {InstrRecord{}};
    Core &fast = makeCore(20'000, 4);
    while (!fast.done())
        sim.run(100);
    const double ipc_nobranch = fast.ipc();

    CoreParams p;
    p.issueWidth = 4;
    p.retireWidth = 4;
    p.windowSize = 64;
    p.instructionLimit = 20'000;
    p.branchRatio = 0.2;
    p.mispredictRate = 0.05;
    p.flushPenalty = 20;
    Core slow(sim, "cpu_b", 1, p, gen, tlb, mem, scheme, pt);
    while (!slow.done())
        sim.run(100);
    EXPECT_GT(slow.branches.value(), 3000.0);
    EXPECT_GT(slow.mispredicts.value(), 100.0);
    EXPECT_LT(slow.ipc(), ipc_nobranch * 0.9)
        << "mispredictions must cost front-end bandwidth";
}

TEST_F(CoreTest, DirtyBitSetOnStoreTranslation)
{
    gen.script.clear();
    InstrRecord st;
    st.isMem = true;
    st.isWrite = true;
    st.vaddr = 0xA000;
    gen.script.push_back(st);
    Core &c = makeCore(4, 1);
    while (!c.done())
        sim.run(50);
    Pte *pte = pt.find(pageOf(Addr{0xA000}));
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->dirty);
}

} // namespace
} // namespace nomad
